// Package replica implements log-shipping read replicas over the WAL.
//
// A Replica tails a leader's log directory — directly (same machine or a
// replicated mount) or a local copy maintained by a Receiver fed from a
// leader-side Shipper over the wire protocol's CRC framing — and replays
// committed records continuously into its own shard.System. Reads are
// served from that system the same way the leader serves them: point reads
// route to one shard, cross-shard queries freeze the follower's clock and
// scan every shard pinned at the frozen timestamp (the SnapshotAt
// machinery of internal/shard). Writes are refused; they belong to the
// leader (internal/server's ReadOnly mode maps them to StatusReadOnly on
// the wire).
//
// # Consistency model
//
// The follower's state always equals a leader state: a checkpoint base
// image plus a per-stream prefix of subsequent commit records — exactly
// the set of states the leader's own recovery could produce. AppliedTs is
// the follower's watermark in the leader's timestamp order; it only moves
// forward. Lag is the distance between that watermark and the leader's
// head; Health maps it onto the PR 6 vocabulary: CaughtUp (last poll found
// nothing new), Lagging (applying, or a transient tail/ship fault is being
// retried), Severed (the session was terminated — only an explicit Sever
// or Close does that, mirroring the WAL's "degraded heals, severed is
// forever" discipline).
//
// # Promotion
//
// Promote ends the session with the same termination discipline the WAL
// gives a crashed leader: the applier stops, the follower's in-memory
// system is discarded, and the log directory is re-opened through the
// ordinary wal recovery path — newest valid checkpoint chain plus replayed
// suffix, torn tails repaired, the shared clock restarted above every
// persisted timestamp. A shipped-but-never-applied suffix therefore means
// never-promoted-as-applied: an unanswered shipment is indistinguishable
// from one that never happened, and nothing acked by the leader's durable
// prefix is lost.
package replica

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dctl"
	"repro/internal/ds"
	"repro/internal/ds/abtree"
	"repro/internal/ds/avl"
	"repro/internal/ds/extbst"
	"repro/internal/ds/hashmap"
	"repro/internal/fault"
	"repro/internal/gclock"
	"repro/internal/mvstm"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/stm"
	"repro/internal/tl2"
	"repro/internal/wal"
)

// Health is the replica's session state.
type Health int

const (
	// CaughtUp: the last poll found nothing new — the follower has applied
	// everything visible in the tailed directory.
	CaughtUp Health = iota
	// Lagging: records are being applied, or a transient fault on the tail
	// is being retried. The follower still serves (stale) snapshot reads.
	Lagging
	// Severed: the session was terminated (Sever, Close or Promote).
	// Severed is forever; a new session means a new Replica.
	Severed
)

func (h Health) String() string {
	switch h {
	case CaughtUp:
		return "caught-up"
	case Lagging:
		return "lagging"
	default:
		return "severed"
	}
}

// Options configures a Replica. Only Dir is required.
type Options struct {
	// Dir is the log directory to tail: the leader's own WAL directory, or
	// the local copy a Receiver maintains.
	Dir string
	// Backend is the follower's TM ("multiverse", "multiverse-eager",
	// "tl2", "dctl"; default "multiverse").
	Backend string
	// Shards is the follower's shard count. 0 derives it from the tailed
	// directory's shard-* layout, so leader-confined transactions stay
	// confined on the follower; with a different count, records whose ops
	// cross follower shards are applied per shard group.
	Shards int
	// DS names the per-shard structure (default "hashmap").
	DS string
	// Capacity is the expected key count (default 1<<16).
	Capacity int
	// LockTable sizes each shard's lock table (default 1<<16).
	LockTable int
	// PollInterval is the applier's idle backoff (default 500µs).
	PollInterval time.Duration
	// FS is the filesystem seam the tail reads through (default fault.OS);
	// an Injector here fault-tests the reading side.
	FS fault.FS
	// Obs, when set, receives the replica's live collectors (replica.*
	// counters, applied-ts watermark, lag).
	Obs *obs.Registry
	// Rec, when set, receives rebase flight-recorder events.
	Rec *obs.Recorder
	// Trace, when set, receives one replica-apply span per applied record
	// that carries a sampled trace id.
	Trace *obs.Tracer
	// ClockOffsetNs, when set, supplies the current follower-minus-leader
	// clock-offset estimate (Receiver.ClockOffsetNs); apply spans subtract
	// it so their start times land in the leader's timebase next to the
	// originating request's server spans.
	ClockOffsetNs func() int64
}

func (o *Options) fill(fsys fault.FS) error {
	if o.Dir == "" {
		return fmt.Errorf("replica: Options.Dir is required")
	}
	if o.Backend == "" {
		o.Backend = "multiverse"
	}
	if o.DS == "" {
		o.DS = "hashmap"
	}
	if o.Capacity == 0 {
		o.Capacity = 1 << 16
	}
	if o.LockTable == 0 {
		o.LockTable = 1 << 16
	}
	if o.PollInterval == 0 {
		o.PollInterval = 500 * time.Microsecond
	}
	if o.FS == nil {
		o.FS = fault.OS
	}
	if o.Shards == 0 {
		dirs, err := listShardDirs(fsys, o.Dir)
		if err != nil {
			return err
		}
		o.Shards = len(dirs)
		if o.Shards == 0 {
			o.Shards = 1
		}
	}
	return nil
}

func listShardDirs(fsys fault.FS, dir string) ([]string, error) {
	names, err := fsys.ReadDir(dir)
	if err != nil {
		if fault.NotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []string
	for _, n := range names {
		if len(n) > 6 && n[:6] == "shard-" {
			out = append(out, n)
		}
	}
	return out, nil
}

// Stats is a snapshot of the replica's counters.
type Stats struct {
	AppliedRecs uint64 // commit records applied since open
	AppliedOps  uint64 // individual redo ops applied
	AppliedTs   uint64 // watermark in the leader's timestamp order
	Rebases     uint64 // base images applied (1 = just the initial one)
	Polls       uint64
	EmptyPolls  uint64 // polls that found nothing new
}

// Replica is one follower session. Reads go through Map()/System() with
// caller-registered threads, exactly like the leader's map.
type Replica struct {
	opts   Options
	sys    *shard.System
	m      *shard.Map
	reader *wal.ShipReader
	mirror map[uint64]uint64 // applied state, for rebase diffs

	appliedRecs atomic.Uint64
	appliedOps  atomic.Uint64
	appliedTs   atomic.Uint64
	rebases     atomic.Uint64
	polls       atomic.Uint64
	emptyPolls  atomic.Uint64

	rec          *obs.Recorder
	trace        *obs.Tracer
	lastProgress atomic.Int64 // unix nanos of the last applied batch or caught-up poll

	caughtUp atomic.Bool
	severed  atomic.Bool

	errMu   sync.Mutex
	lastErr error

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// Open starts a follower session tailing opts.Dir. The applier goroutine
// runs until Sever, Close or Promote.
func Open(opts Options) (*Replica, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = fault.OS
	}
	if err := opts.fill(fsys); err != nil {
		return nil, err
	}
	backend, err := backendFor(opts.Backend, opts.LockTable)
	if err != nil {
		return nil, err
	}
	r := &Replica{
		opts:   opts,
		mirror: make(map[uint64]uint64),
		reader: wal.OpenShipReader(opts.Dir, opts.FS),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
		rec:    opts.Rec,
		trace:  opts.Trace,
	}
	r.lastProgress.Store(time.Now().UnixNano())
	r.sys = shard.New(shard.Config{Shards: opts.Shards, Backend: backend})
	per := opts.Capacity / opts.Shards
	if per < 1024 {
		per = 1024
	}
	var dsErr error
	r.m = shard.NewMap(r.sys, func(i int) ds.Map {
		d, err := newDS(opts.DS, per)
		if err != nil {
			dsErr = err
			d, _ = newDS("hashmap", per)
		}
		return d
	})
	if dsErr != nil {
		r.sys.Close()
		return nil, dsErr
	}
	if opts.Obs != nil {
		r.registerObs(opts.Obs)
	}
	go r.run()
	return r, nil
}

// registerObs exposes the follower session on reg as live collectors.
// replica.lag_ns is 0 while caught up; otherwise the time since the last
// forward progress (an applied batch or a drained poll) — the operator's
// "how stale are this follower's reads" number.
func (r *Replica) registerObs(reg *obs.Registry) {
	reg.Text(func(emit func(name, v string)) {
		emit("replica.health", r.Health().String())
	})
	reg.Func(func(emit func(name string, v uint64)) {
		st := r.Stats()
		emit("replica.applied_recs", st.AppliedRecs)
		emit("replica.applied_ops", st.AppliedOps)
		emit("replica.applied_ts", st.AppliedTs)
		emit("replica.rebases", st.Rebases)
		emit("replica.polls", st.Polls)
		emit("replica.empty_polls", st.EmptyPolls)
		emit("replica.lag_ns", r.LagNs())
		caught := uint64(0)
		if r.Health() == CaughtUp {
			caught = 1
		}
		emit("replica.caught_up", caught)
	})
}

// LagNs returns 0 while the follower is caught up, otherwise the
// nanoseconds since it last made forward progress.
func (r *Replica) LagNs() uint64 {
	if r.Health() == CaughtUp {
		return 0
	}
	d := time.Now().UnixNano() - r.lastProgress.Load()
	if d < 0 {
		return 0
	}
	return uint64(d)
}

// Map returns the follower's logical map; drive reads with threads
// registered on System().
func (r *Replica) Map() ds.Map { return r.m }

// System returns the follower's sharded TM.
func (r *Replica) System() *shard.System { return r.sys }

// AppliedTs returns the follower's watermark in the leader's timestamp
// order: every leader commit with ts < the last rebase's base ts, plus
// every applied record's ts, is reflected in the served state.
func (r *Replica) AppliedTs() uint64 { return r.appliedTs.Load() }

// Stats snapshots the replica counters.
func (r *Replica) Stats() Stats {
	return Stats{
		AppliedRecs: r.appliedRecs.Load(),
		AppliedOps:  r.appliedOps.Load(),
		AppliedTs:   r.appliedTs.Load(),
		Rebases:     r.rebases.Load(),
		Polls:       r.polls.Load(),
		EmptyPolls:  r.emptyPolls.Load(),
	}
}

// Health maps the session state onto the PR 6 vocabulary.
func (r *Replica) Health() Health {
	if r.severed.Load() {
		return Severed
	}
	if r.Err() != nil || !r.caughtUp.Load() {
		return Lagging
	}
	return CaughtUp
}

// Err returns the last tail/apply error, nil once a later poll succeeds.
func (r *Replica) Err() error {
	r.errMu.Lock()
	defer r.errMu.Unlock()
	return r.lastErr
}

func (r *Replica) setErr(err error) {
	r.errMu.Lock()
	r.lastErr = err
	r.errMu.Unlock()
}

// CatchUp blocks until the follower has drained everything visible in the
// tailed directory (Health CaughtUp) or the timeout passes. With a
// quiesced leader a nil return means the follower state equals the
// leader's durable-plus-buffered-written state.
func (r *Replica) CatchUp(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	// The caught-up flag describes the last COMPLETED poll, which may
	// predate writes the caller just made. Insist on polls advancing by two:
	// the first post-call poll may have been in flight (reading directories
	// from before the caller's writes landed), the second necessarily
	// started after this call and saw everything.
	start := r.polls.Load()
	for {
		if r.severed.Load() {
			return fmt.Errorf("replica: severed while catching up")
		}
		if r.caughtUp.Load() && r.Err() == nil && r.polls.Load() >= start+2 {
			return nil
		}
		if !time.Now().Before(deadline) {
			return fmt.Errorf("replica: catch-up timeout (applied %d recs, ts %d): %v",
				r.appliedRecs.Load(), r.appliedTs.Load(), r.Err())
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// Sever terminates the session: the applier stops, Health reports Severed
// forever, and the follower keeps serving its last applied state.
func (r *Replica) Sever() {
	r.stopOnce.Do(func() { close(r.stop) })
	<-r.done
	r.severed.Store(true)
}

// Close severs the session and shuts the follower system down.
func (r *Replica) Close() {
	r.Sever()
	r.sys.Close()
}

// Promote ends the follower session and re-opens the tailed directory as a
// leader through the ordinary wal recovery path: newest valid checkpoint
// chain plus replayed suffix, torn tails repaired, clock restarted above
// every persisted timestamp. The Replica is consumed; the returned map and
// log are a fresh leader over the same history.
func (r *Replica) Promote() (ds.Map, *wal.Log, error) {
	r.Close()
	return wal.OpenWith(wal.Options{
		Dir:       r.opts.Dir,
		Backend:   r.opts.Backend,
		Shards:    r.opts.Shards,
		DS:        r.opts.DS,
		Capacity:  r.opts.Capacity,
		LockTable: r.opts.LockTable,
		FS:        r.opts.FS,
	})
}

// run is the applier: poll the ship reader, apply, back off when drained.
func (r *Replica) run() {
	defer close(r.done)
	th := r.sys.RegisterSharded()
	defer th.Unregister()
	for {
		select {
		case <-r.stop:
			return
		default:
		}
		b, err := r.reader.Poll()
		r.polls.Add(1)
		if err != nil {
			r.setErr(err)
			r.caughtUp.Store(false)
			r.idle()
			continue
		}
		r.setErr(nil)
		switch {
		case b.Rebase:
			r.applyRebase(th, &b)
		case len(b.Recs) > 0:
			r.caughtUp.Store(false)
			r.applyRecs(th, b.Recs)
		default:
			r.caughtUp.Store(true)
			r.emptyPolls.Add(1)
			r.lastProgress.Store(time.Now().UnixNano())
			r.idle()
		}
	}
}

func (r *Replica) idle() {
	select {
	case <-r.stop:
	case <-time.After(r.opts.PollInterval):
	}
}

// applyRebase replaces the follower state with a base image by applying
// the diff against the mirror — so an initial image loads fully, and a
// mid-session rebase (checkpoint truncation outran the tail) touches only
// what actually changed.
func (r *Replica) applyRebase(th *shard.Thread, b *wal.ShipBatch) {
	var ops []stm.RedoRec
	for k := range r.mirror {
		if _, ok := b.Image[k]; !ok {
			ops = append(ops, stm.RedoRec{Op: stm.RedoDelete, Key: k})
		}
	}
	for k, v := range b.Image {
		old, ok := r.mirror[k]
		if ok && old == v {
			continue
		}
		if ok {
			// InsertTx is insert-if-absent; a changed value needs the delete
			// first (applyOps keeps per-key order: same key, same shard).
			ops = append(ops, stm.RedoRec{Op: stm.RedoDelete, Key: k})
		}
		ops = append(ops, stm.RedoRec{Op: stm.RedoInsert, Key: k, Val: v})
	}
	byShard := make([][]stm.RedoRec, r.sys.NumShards())
	for _, op := range ops {
		s := r.sys.ShardOf(op.Key)
		byShard[s] = append(byShard[s], op)
	}
	const batch = 256
	for _, shardOps := range byShard {
		for len(shardOps) > 0 {
			n := min(batch, len(shardOps))
			r.applyOps(th, shardOps[:n])
			shardOps = shardOps[n:]
		}
	}
	r.mirror = b.Image // reader hands over ownership
	r.rebases.Add(1)
	if b.BaseTs > r.appliedTs.Load() {
		r.appliedTs.Store(b.BaseTs)
	}
	r.caughtUp.Store(false)
	r.lastProgress.Store(time.Now().UnixNano())
	r.rec.Record(obs.EvReplicaRebase, b.BaseTs, uint64(len(b.Image)), 0)
}

// applyRecs applies shipped commit records in arrival order. Each record
// is one follower transaction when its ops stay on one follower shard
// (always true when the shard counts match — keys route by the same hash);
// otherwise it splits into one transaction per shard group.
func (r *Replica) applyRecs(th *shard.Thread, recs []wal.ShipRec) {
	for _, rec := range recs {
		var applyT0 int64
		if rec.Trace != 0 && r.trace != nil {
			applyT0 = time.Now().UnixNano()
		}
		if len(rec.Redo) > 0 {
			home, same := r.sys.ShardOf(rec.Redo[0].Key), true
			for _, op := range rec.Redo[1:] {
				if r.sys.ShardOf(op.Key) != home {
					same = false
					break
				}
			}
			if same {
				r.applyOps(th, rec.Redo)
			} else {
				byShard := make(map[int][]stm.RedoRec)
				for _, op := range rec.Redo {
					s := r.sys.ShardOf(op.Key)
					byShard[s] = append(byShard[s], op)
				}
				for _, group := range byShard {
					r.applyOps(th, group)
				}
			}
			for _, op := range rec.Redo {
				if op.Op == stm.RedoDelete {
					delete(r.mirror, op.Key)
				} else {
					r.mirror[op.Key] = op.Val
				}
			}
			r.appliedOps.Add(uint64(len(rec.Redo)))
		}
		r.appliedRecs.Add(1)
		if rec.Ts > r.appliedTs.Load() {
			r.appliedTs.Store(rec.Ts)
		}
		if applyT0 != 0 {
			var off int64
			if r.opts.ClockOffsetNs != nil {
				off = r.opts.ClockOffsetNs()
			}
			end := time.Now().UnixNano()
			r.trace.Record(rec.Trace, obs.StageReplicaApply, uint64(rec.Shard),
				applyT0-off, end-applyT0, rec.Ts, uint64(off))
		}
	}
	r.lastProgress.Store(time.Now().UnixNano())
}

// applyOps commits one shard-confined group of redo ops, retrying
// starvation — skipping a shipped record would be silent divergence, so
// the only exits are success and session stop.
func (r *Replica) applyOps(th *shard.Thread, ops []stm.RedoRec) {
	for {
		ok := th.Atomic(func(tx stm.Txn) {
			for _, op := range ops {
				if op.Op == stm.RedoDelete {
					r.m.DeleteTx(tx, op.Key)
					continue
				}
				// Redo values are absolute, so replay is an upsert: a key the
				// follower already holds (a rebase-boundary or seal-suffix
				// duplicate) is overwritten, never silently kept stale.
				if !r.m.InsertTx(tx, op.Key, op.Val) {
					r.m.DeleteTx(tx, op.Key)
					r.m.InsertTx(tx, op.Key, op.Val)
				}
			}
		})
		if ok {
			return
		}
		select {
		case <-r.stop:
			return
		case <-time.After(100 * time.Microsecond):
		}
	}
}

// newDS mirrors wal's structure factory (replica must not drag bench in).
func newDS(name string, capacity int) (ds.Map, error) {
	switch name {
	case "hashmap":
		return hashmap.New(10*capacity, capacity), nil
	case "abtree":
		return abtree.New(capacity), nil
	case "avl":
		return avl.New(capacity), nil
	case "extbst":
		return extbst.New(capacity), nil
	}
	return nil, fmt.Errorf("replica: unknown data structure %q", name)
}

// backendFor builds the follower's TM backend — the same constructions the
// WAL uses, minus the commit observer (the follower's own commits are
// replays; logging them again would be a second, diverging history).
func backendFor(name string, lockTable int) (shard.Backend, error) {
	switch name {
	case "multiverse", "multiverse-eager":
		cfg := mvstm.Config{LockTableSize: lockTable}
		if name == "multiverse-eager" {
			cfg.K1, cfg.K2, cfg.K3, cfg.S = 1, 2, 2, 2
		}
		return func(i int, clock *gclock.Clock) stm.System {
			c := cfg
			c.Clock = clock
			return mvstm.New(c)
		}, nil
	case "tl2":
		return func(i int, clock *gclock.Clock) stm.System {
			return tl2.New(tl2.Config{LockTableSize: lockTable, Clock: clock})
		}, nil
	case "dctl":
		return func(i int, clock *gclock.Clock) stm.System {
			return dctl.New(dctl.Config{LockTableSize: lockTable, Clock: clock})
		}, nil
	}
	return nil, fmt.Errorf("replica: backend %q cannot follow (want multiverse, multiverse-eager, tl2 or dctl)", name)
}
