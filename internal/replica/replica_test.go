package replica

import (
	"sort"
	"testing"
	"time"

	"repro/internal/ds"
	"repro/internal/stm"
	"repro/internal/wal"
	"repro/internal/workload"
)

func leaderOpts(dir, backend string, shards int, mod func(*wal.Options)) wal.Options {
	o := wal.Options{
		Dir:           dir,
		Backend:       backend,
		Shards:        shards,
		DS:            "hashmap",
		Capacity:      1 << 12,
		LockTable:     1 << 12,
		SegmentBytes:  1 << 12,
		GroupInterval: 500 * time.Microsecond,
	}
	if mod != nil {
		mod(&o)
	}
	return o
}

func mustLeader(t *testing.T, o wal.Options) (ds.Map, *wal.Log) {
	t.Helper()
	m, l, err := wal.OpenWith(o)
	if err != nil {
		t.Fatalf("OpenWith: %v", err)
	}
	return m, l
}

// exportLeader snapshots the leader's whole map, sorted.
func exportLeader(t *testing.T, l *wal.Log, m ds.Map) []ds.KV {
	t.Helper()
	th := l.System().Register()
	defer th.Unregister()
	pairs, ok := ds.Export(th, m.(ds.Visitor), 1, ^uint64(0))
	if !ok {
		t.Fatal("leader export starved")
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].Key < pairs[j].Key })
	return pairs
}

// exportReplica snapshots the follower's map through its own system.
func exportReplica(t *testing.T, r *Replica) []ds.KV {
	t.Helper()
	th := r.System().Register()
	defer th.Unregister()
	pairs, ok := ds.Export(th, r.Map().(ds.Visitor), 1, ^uint64(0))
	if !ok {
		t.Fatal("replica export starved")
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].Key < pairs[j].Key })
	return pairs
}

func kvEqual(a, b []ds.KV) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// churn commits n delete+insert pairs over a small key space.
func churn(t *testing.T, l *wal.Log, m ds.Map, seed uint64, n int) {
	t.Helper()
	th := l.System().Register()
	defer th.Unregister()
	rng := workload.NewRng(seed)
	for i := 0; i < n; i++ {
		k := rng.Next()%512 + 1
		if rng.Next()%3 == 0 {
			ds.Delete(th, m, k)
		} else {
			ds.Insert(th, m, k, rng.Next())
		}
	}
}

// TestReplicaFollowsLeader: the differential oracle, across backends and a
// shard-count mismatch — the follower must converge on exactly the leader's
// state, through checkpoints truncating the log it is tailing.
func TestReplicaFollowsLeader(t *testing.T) {
	cases := []struct {
		name           string
		backend        string
		leaderShards   int
		followerShards int
	}{
		{"multiverse", "multiverse", 2, 0},  // 0: derive from dir
		{"tl2", "tl2", 2, 0},
		{"dctl", "dctl", 2, 0},
		{"reshard", "multiverse", 4, 2},     // follower splits records itself
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			m, l := mustLeader(t, leaderOpts(dir, tc.backend, tc.leaderShards, nil))
			defer l.Close()
			churn(t, l, m, 5, 500)
			if err := l.Sync(); err != nil {
				t.Fatalf("Sync: %v", err)
			}

			r, err := Open(Options{Dir: dir, Backend: tc.backend, Shards: tc.followerShards})
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			defer r.Close()
			if err := r.CatchUp(5 * time.Second); err != nil {
				t.Fatalf("CatchUp: %v", err)
			}
			if got, want := exportReplica(t, r), exportLeader(t, l, m); !kvEqual(got, want) {
				t.Fatalf("follower diverged after initial catch-up: %d vs %d pairs", len(got), len(want))
			}
			if h := r.Health(); h != CaughtUp {
				t.Fatalf("Health = %v after catch-up, want CaughtUp", h)
			}

			// Keep writing, checkpoint under the running tail, write more.
			churn(t, l, m, 6, 400)
			if _, err := l.Checkpoint(); err != nil {
				t.Fatalf("Checkpoint: %v", err)
			}
			churn(t, l, m, 7, 400)
			if err := l.Sync(); err != nil {
				t.Fatalf("Sync: %v", err)
			}
			if err := r.CatchUp(5 * time.Second); err != nil {
				t.Fatalf("CatchUp after churn: %v", err)
			}
			if got, want := exportReplica(t, r), exportLeader(t, l, m); !kvEqual(got, want) {
				t.Fatalf("follower diverged after checkpointed churn: %d vs %d pairs", len(got), len(want))
			}
			st := r.Stats()
			if st.AppliedRecs == 0 || st.AppliedTs == 0 {
				t.Fatalf("no application recorded: %+v", st)
			}
		})
	}
}

// TestReplicaServesSnapshotReads: follower scans pinned at a frozen ts must
// never observe a torn transaction. The leader moves a fixed sum between two
// keys in single transactions (shards=1 keeps update transactions
// shard-confined, as the shard contract requires); every follower range scan
// must see the invariant sum, whatever prefix of transfers it reflects.
func TestReplicaServesSnapshotReads(t *testing.T) {
	dir := t.TempDir()
	m, l := mustLeader(t, leaderOpts(dir, "multiverse", 1, nil))
	defer l.Close()

	const total = uint64(1000)
	th := l.System().Register()
	ds.Insert(th, m, 1, total)
	ds.Insert(th, m, 2, 0)
	th.Unregister()
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}

	r, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer r.Close()
	if err := r.CatchUp(5 * time.Second); err != nil {
		t.Fatalf("CatchUp: %v", err)
	}

	stop := make(chan struct{})
	go func() {
		defer close(stop)
		wth := l.System().Register()
		defer wth.Unregister()
		rng := workload.NewRng(13)
		for i := 0; i < 400; i++ {
			amt := rng.Next() % 10
			wth.Atomic(func(tx stm.Txn) {
				a, _ := m.SearchTx(tx, 1)
				b, _ := m.SearchTx(tx, 2)
				if a < amt {
					return
				}
				m.DeleteTx(tx, 1)
				m.DeleteTx(tx, 2)
				m.InsertTx(tx, 1, a-amt)
				m.InsertTx(tx, 2, b+amt)
			})
		}
	}()

	rth := r.System().Register()
	for done := false; !done; {
		select {
		case <-stop:
			done = true
		default:
		}
		var a, b uint64
		var okA, okB bool
		if !rth.ReadOnly(func(tx stm.Txn) {
			a, okA = r.Map().SearchTx(tx, 1)
			b, okB = r.Map().SearchTx(tx, 2)
		}) {
			continue
		}
		// A transfer deletes both keys then reinserts both inside one
		// transaction, so a pinned read sees either both or a state where
		// the sum still holds — never a torn intermediate.
		if !okA || !okB || a+b != total {
			t.Fatalf("torn follower read: a=%d(%v) b=%d(%v), want sum %d", a, okA, b, okB, total)
		}
	}
	rth.Unregister()
}

// TestReplicaPromote: after the leader dies mid-write, promoting the
// follower over the same directory must recover exactly the leader's acked
// (synced) state — zero acked-record loss — and the promoted log must
// accept new writes above every applied timestamp.
func TestReplicaPromote(t *testing.T) {
	dir := t.TempDir()
	m, l := mustLeader(t, leaderOpts(dir, "multiverse", 2, nil))
	churn(t, l, m, 21, 600)
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	acked := exportLeader(t, l, m)

	r, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := r.CatchUp(5 * time.Second); err != nil {
		t.Fatalf("CatchUp: %v", err)
	}
	maxApplied := r.AppliedTs()
	l.Crash() // leader dies; its unsynced tail is fair game, acked state is not

	pm, pl, err := r.Promote()
	if err != nil {
		t.Fatalf("Promote: %v", err)
	}
	defer pl.Close()
	if h := r.Health(); h != Severed {
		t.Fatalf("Health = %v after promote, want Severed", h)
	}
	got := exportLeader(t, pl, pm)
	if !kvEqual(got, acked) {
		t.Fatalf("promotion lost acked state: %d vs %d pairs", len(got), len(acked))
	}

	// New writes must land above everything applied pre-promotion: the
	// recovery clock restart guarantees fresh timestamps never collide with
	// replicated history.
	pth := pl.System().Register()
	if ins, ok := ds.Insert(pth, pm, 1<<40, 42); !ok || !ins {
		t.Fatalf("insert on promoted leader: ins=%v ok=%v", ins, ok)
	}
	pth.Unregister()
	if err := pl.Sync(); err != nil {
		t.Fatalf("Sync on promoted leader: %v", err)
	}
	// A fresh tailer over the promoted log sees the new write with a ts
	// above the old applied watermark.
	sr := wal.OpenShipReader(dir, nil)
	var newMax uint64
	for empty := 0; empty < 2; {
		b, err := sr.Poll()
		if err != nil {
			t.Fatalf("post-promotion poll: %v", err)
		}
		if !b.Rebase && len(b.Recs) == 0 {
			empty++
			continue
		}
		empty = 0
		for _, rec := range b.Recs {
			if rec.Ts > newMax {
				newMax = rec.Ts
			}
		}
	}
	if newMax <= maxApplied {
		t.Fatalf("promoted leader ts %d did not advance past applied %d", newMax, maxApplied)
	}
}
