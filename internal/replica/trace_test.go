package replica

import (
	"testing"
	"time"

	"repro/internal/ds"
	"repro/internal/obs"
	"repro/internal/stm"
	"repro/internal/wal"
)

// TestChannelTraceClockAndApplySpans pins the cross-process half of the
// tracing pipeline: a trace id stamped on the leader rides the redo record
// header through the WAL, the ship channel, and the follower's apply loop,
// where it surfaces as a replica-apply span shifted into the leader's
// timebase by the channel's clock-offset estimate.
func TestChannelTraceClockAndApplySpans(t *testing.T) {
	leaderDir, followerDir := t.TempDir(), t.TempDir()
	ltr := obs.NewTracer(1<<10, 1, nil)
	m, l := mustLeader(t, leaderOpts(leaderDir, "multiverse", 2, func(o *wal.Options) { o.Trace = ltr }))
	defer l.Close()

	th := l.System().Register()
	ids := make([]uint64, 0, 20)
	for i := uint64(1); i <= 20; i++ {
		id := ltr.SampleID()
		stm.SetTrace(th, ltr, id)
		if ins, ok := ds.Insert(th, m, i, i*3); !ok || !ins {
			t.Fatalf("insert %d failed", i)
		}
		ids = append(ids, id)
	}
	stm.SetTrace(th, nil, 0)
	th.Unregister()
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}

	// The leader side must already carry STM and WAL spans for those ids.
	leaderStages := map[obs.Stage]int{}
	for _, sp := range ltr.Spans() {
		leaderStages[sp.Stage]++
	}
	for _, st := range []obs.Stage{obs.StageAttempt, obs.StageWalAppend, obs.StageWalCoalesce, obs.StageWalFsync} {
		if leaderStages[st] == 0 {
			t.Errorf("leader recorded no %v spans", st)
		}
	}

	sh, rc, wait := shipPair(t, leaderDir, followerDir, nil)
	defer func() { sh.Stop(); rc.Stop(); wait() }()

	ftr := obs.NewTracer(1<<10, 1, nil)
	r, err := Open(Options{Dir: followerDir, Trace: ftr, ClockOffsetNs: rc.ClockOffsetNs})
	if err != nil {
		t.Fatalf("Open follower: %v", err)
	}
	defer r.Close()
	awaitEqual(t, r, l, m, 10*time.Second)

	// The shipper sends a clock frame right after hello, so by convergence
	// the receiver must hold an estimate. Same process, so the true offset
	// is ~0 and the min-estimate is a one-way latency: positive, tiny.
	deadline := time.Now().Add(5 * time.Second)
	for rc.ClockOffsetNs() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	off := rc.ClockOffsetNs()
	if off <= 0 || off > int64(time.Second) {
		t.Fatalf("clock-offset estimate %dns, want small positive (same machine)", off)
	}

	applied := map[uint64]bool{}
	for _, sp := range ftr.Spans() {
		if sp.Stage != obs.StageReplicaApply {
			t.Fatalf("follower recorded unexpected stage %v", sp.Stage)
		}
		if sp.DurNs < 0 || sp.A == 0 {
			t.Fatalf("apply span malformed: %+v", sp)
		}
		applied[sp.Trace] = true
	}
	for _, id := range ids {
		if !applied[id] {
			t.Errorf("trace %d never produced a replica-apply span", id)
		}
	}
}
