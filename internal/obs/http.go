package obs

import (
	"net/http"
	"net/http/pprof"
)

// Handler returns the HTTP scrape surface stmserve mounts under -obs:
//
//	/debug/obs         registry snapshot as JSON (expvar-style flat names)
//	/debug/obs/events  flight-recorder dump as text
//	/debug/obs/trace   tracer span ring as JSON
//	/debug/pprof/...   net/http/pprof
//	/                  redirects to /debug/obs
//
// reg must be non-nil; rec and tr may be nil (the events endpoint then
// reports that no recorder is attached, and the trace endpoint serves a
// valid empty document with every=0).
func Handler(reg *Registry, rec *Recorder, tr *Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/obs", func(w http.ResponseWriter, req *http.Request) {
		b, err := reg.JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(b)
		w.Write([]byte("\n"))
	})
	mux.HandleFunc("/debug/obs/events", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		rec.Dump(w)
	})
	mux.HandleFunc("/debug/obs/trace", func(w http.ResponseWriter, req *http.Request) {
		b, err := tr.JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(b)
		w.Write([]byte("\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		http.Redirect(w, req, "/debug/obs", http.StatusFound)
	})
	return mux
}
