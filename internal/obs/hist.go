package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Hist is a concurrent log-linear latency histogram (16 sub-buckets per
// power of two, linear below 16ns): relative error ≤ 1/16 per sample,
// fixed memory, lock-free allocation-free recording. Quantiles report the
// recorded bucket's upper bound, so tails round pessimistically. Promoted
// from internal/server/client (PR 7) so the server, replica, and
// dashboards share one implementation.
type Hist struct {
	counts [histBuckets]atomic.Uint64
	n      atomic.Uint64
}

const (
	histSubBits = 4
	histSub     = 1 << histSubBits
	histBuckets = (64-histSubBits)*histSub + histSub
)

func histBucket(v uint64) int {
	if v < histSub {
		return int(v)
	}
	exp := bits.Len64(v) - 1
	sub := (v >> (uint(exp) - histSubBits)) & (histSub - 1)
	return (exp-histSubBits+1)<<histSubBits + int(sub)
}

// histLow returns the lowest value mapping into bucket i. For
// i == histBuckets (one past the top bucket, i.e. the upper bound reported
// for a sample near MaxUint64) the true bound would be 2^64, which
// overflows uint64 — saturate instead of wrapping to 0.
func histLow(i int) uint64 {
	if i < histSub {
		return uint64(i)
	}
	block := uint(i >> histSubBits)
	exp := block + histSubBits - 1
	if exp >= 64 {
		return math.MaxUint64
	}
	return 1<<exp + uint64(i&(histSub-1))<<(exp-histSubBits)
}

// Record adds one sample.
func (h *Hist) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[histBucket(uint64(d))].Add(1)
	h.n.Add(1)
}

// RecordNs adds one sample given in nanoseconds.
func (h *Hist) RecordNs(ns uint64) {
	h.counts[histBucket(ns)].Add(1)
	h.n.Add(1)
}

// Count returns the number of recorded samples.
func (h *Hist) Count() uint64 { return h.n.Load() }

// Quantile returns the latency at quantile q in [0, 1]. Zero samples
// yields 0.
func (h *Hist) Quantile(q float64) time.Duration {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	target := uint64(q * float64(n))
	if target >= n {
		target = n - 1
	}
	var seen uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		seen += c
		if seen > target {
			return time.Duration(histLow(i + 1))
		}
	}
	return 0
}

// Max returns an upper bound on the largest recorded sample, or 0 if empty.
func (h *Hist) Max() time.Duration {
	for i := histBuckets - 1; i >= 0; i-- {
		if h.counts[i].Load() != 0 {
			return time.Duration(histLow(i + 1))
		}
	}
	return 0
}

// Merge adds o's samples into h (not concurrent-safe against Record on o).
func (h *Hist) Merge(o *Hist) {
	for i := range h.counts {
		if c := o.counts[i].Load(); c != 0 {
			h.counts[i].Add(c)
		}
	}
	h.n.Add(o.n.Load())
}

// HistSnapshot is the quantile summary a Hist contributes to a registry
// Snapshot. Quantile fields are nanoseconds (bucket upper bounds).
type HistSnapshot struct {
	Count uint64 `json:"count"`
	P50   int64  `json:"p50_ns"`
	P90   int64  `json:"p90_ns"`
	P99   int64  `json:"p99_ns"`
	P999  int64  `json:"p999_ns"`
	Max   int64  `json:"max_ns"`
}

// Snapshot summarizes the histogram. Samples recorded concurrently may or
// may not be included, but the bucket image is captured once and every
// quantile is computed from that one image, so the reported quantiles are
// mutually consistent (p50 ≤ p90 ≤ p99 ≤ p999 ≤ max) even mid-write —
// walking the live buckets per quantile lets concurrent low-bucket arrivals
// cross a high quantile's target early and invert the tail.
func (h *Hist) Snapshot() HistSnapshot {
	var counts [histBuckets]uint64
	var total uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		counts[i] = c
		total += c
	}
	quantile := func(q float64) int64 {
		target := uint64(q * float64(total))
		if target >= total {
			target = total - 1
		}
		var seen uint64
		for i, c := range counts {
			if c == 0 {
				continue
			}
			seen += c
			if seen > target {
				return int64(histLow(i + 1))
			}
		}
		return 0
	}
	snap := HistSnapshot{Count: total}
	if total == 0 {
		return snap
	}
	snap.P50 = quantile(0.50)
	snap.P90 = quantile(0.90)
	snap.P99 = quantile(0.99)
	snap.P999 = quantile(0.999)
	for i := histBuckets - 1; i >= 0; i-- {
		if counts[i] != 0 {
			snap.Max = int64(histLow(i + 1))
			break
		}
	}
	return snap
}
