package obs

import (
	"encoding/json"
	"testing"
)

func TestTracerSampling(t *testing.T) {
	tr := NewTracer(64, 3, nil)
	if tr.Every() != 3 {
		t.Fatalf("Every = %d, want 3", tr.Every())
	}
	var ids []uint64
	for i := 1; i <= 12; i++ {
		id := tr.SampleID()
		if (i%3 == 0) != (id != 0) {
			t.Fatalf("call %d: id=%d — want nonzero exactly on multiples of 3", i, id)
		}
		if id != 0 {
			ids = append(ids, id)
		}
	}
	if len(ids) != 4 {
		t.Fatalf("sampled %d of 12 calls, want 4", len(ids))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatalf("ids not increasing: %v", ids)
		}
	}
}

func TestTracerRingWraparound(t *testing.T) {
	tr := NewTracer(16, 1, nil)
	for i := 1; i <= 40; i++ {
		tr.Record(uint64(i), StageExecute, 7, int64(i*100), 50, uint64(i), 0)
	}
	if tr.Len() != 40 {
		t.Fatalf("Len = %d, want 40", tr.Len())
	}
	spans := tr.Spans()
	if len(spans) != 16 {
		t.Fatalf("ring holds %d spans, want 16", len(spans))
	}
	for i, sp := range spans {
		want := uint64(25 + i) // seqs 25..40 survive; 1..24 overwritten
		if sp.Seq != want || sp.Trace != want || sp.A != want {
			t.Fatalf("span %d: seq=%d trace=%d a=%d, want all %d", i, sp.Seq, sp.Trace, sp.A, want)
		}
		if sp.Stage != StageExecute || sp.Src != 7 || sp.StartNs != int64(want*100) || sp.DurNs != 50 {
			t.Fatalf("span %d payload diverged: %+v", i, sp)
		}
	}
}

func TestTracerRecordUnsampledNoop(t *testing.T) {
	tr := NewTracer(16, 2, nil)
	tr.Record(0, StageExecute, 0, 1, 1, 0, 0)
	if tr.Len() != 0 || len(tr.Spans()) != 0 {
		t.Fatal("id 0 must not record")
	}
}

func TestTracerNilSafety(t *testing.T) {
	var tr *Tracer
	if tr.SampleID() != 0 || tr.Every() != 0 || tr.Len() != 0 || tr.Spans() != nil {
		t.Fatal("nil tracer must sample and hold nothing")
	}
	tr.Record(1, StageExecute, 0, 1, 1, 0, 0) // must not panic
	d := tr.Dump()
	if d.Version != TraceVersion || d.Every != 0 || d.Spans == nil || len(d.Spans) != 0 {
		t.Fatalf("nil Dump = %+v, want valid empty document", d)
	}
	if _, err := tr.JSON(); err != nil {
		t.Fatalf("nil JSON: %v", err)
	}
}

func TestStageNamesRoundTrip(t *testing.T) {
	for st := Stage(1); int(st) < NumStages; st++ {
		name := st.String()
		if name == "stage(?)" {
			t.Fatalf("stage %d has no name", st)
		}
		got, ok := StageByName(name)
		if !ok || got != st {
			t.Fatalf("StageByName(%q) = %v, %v; want %v", name, got, ok, st)
		}
	}
	if _, ok := StageByName("nope"); ok {
		t.Fatal("unknown name resolved")
	}
}

func TestTracerDumpAndHists(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(64, 1, reg)
	tr.Record(5, StageDecode, 1, 100, 10, 42, 0)
	tr.Record(5, StageExecute, 1, 110, 20, 42, 0)
	tr.Record(5, StageAttempt, 0, 110, 15, 1, 0)

	b, err := tr.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	var d TraceDump
	if err := json.Unmarshal(b, &d); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if d.Version != TraceVersion || d.Every != 1 || len(d.Spans) != 3 {
		t.Fatalf("dump = v%d every=%d %d spans", d.Version, d.Every, len(d.Spans))
	}
	if d.Spans[1].Stage != "execute" || d.Spans[1].Trace != 5 || d.Spans[1].DurNs != 20 || d.Spans[1].A != 42 {
		t.Fatalf("span 1 diverged: %+v", d.Spans[1])
	}

	snap := reg.Snapshot()
	if h, ok := snap.Hists["trace.stage.execute"]; !ok || h.Count != 1 {
		t.Fatalf("trace.stage.execute hist = %+v, %v", snap.Hists["trace.stage.execute"], ok)
	}
	if h := snap.Hists["trace.stage.attempt"]; h.Count != 1 {
		t.Fatalf("trace.stage.attempt count = %d", h.Count)
	}
}

// TestTraceOverheadAllocs pins the hot paths at zero allocations: both the
// tracing-off path (nil tracer — what every request pays when -trace-every
// is 0) and the active sampling/recording path.
func TestTraceOverheadAllocs(t *testing.T) {
	var off *Tracer
	if n := testing.AllocsPerRun(1000, func() {
		if id := off.SampleID(); id != 0 {
			off.Record(id, StageExecute, 0, 0, 0, 0, 0)
		}
	}); n != 0 {
		t.Fatalf("tracing-off path allocates %.1f/op", n)
	}
	on := NewTracer(1024, 1, nil)
	if n := testing.AllocsPerRun(1000, func() {
		id := on.SampleID()
		on.Record(id, StageExecute, 3, 100, 10, 1, 0)
	}); n != 0 {
		t.Fatalf("recording path allocates %.1f/op", n)
	}
}

// BenchmarkTraceOverhead prices the sampling-off hot path against the
// baseline: request dispatch with no tracer must stay within noise (≤5%)
// of dispatch before tracing existed, since the nil check is all it adds.
func BenchmarkTraceOverhead(b *testing.B) {
	sink := uint64(0)
	b.Run("baseline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink += uint64(i)
		}
	})
	b.Run("off", func(b *testing.B) {
		var tr *Tracer
		for i := 0; i < b.N; i++ {
			sink += uint64(i)
			if id := tr.SampleID(); id != 0 {
				tr.Record(id, StageExecute, 0, 0, 0, 0, 0)
			}
		}
	})
	b.Run("sampling-1-in-1024", func(b *testing.B) {
		tr := NewTracer(4096, 1024, nil)
		for i := 0; i < b.N; i++ {
			sink += uint64(i)
			if id := tr.SampleID(); id != 0 {
				tr.Record(id, StageExecute, 0, 0, 0, 0, 0)
			}
		}
	})
	b.Run("sampling-all", func(b *testing.B) {
		tr := NewTracer(4096, 1, nil)
		for i := 0; i < b.N; i++ {
			sink += uint64(i)
			tr.Record(tr.SampleID(), StageExecute, 0, 0, 0, 0, 0)
		}
	})
	_ = sink
}
