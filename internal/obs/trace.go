package obs

import (
	"encoding/json"
	"math/bits"
	"sort"
	"sync/atomic"
)

// Stage names one segment of a sampled transaction's lifecycle. Stages form
// two families: the server chain (Decode through AckWrite, plus Total) is a
// non-overlapping partition of the wire round trip, while the STM / WAL /
// replica stages overlay it — an Attempt span lives inside Execute, the WAL
// spans inside SyncWait, and ReplicaApply on another process entirely.
type Stage uint8

const (
	stageNone Stage = iota
	// StageDecode: wire request parse. Src = op, A = request id.
	StageDecode
	// StageQueueWait: frame read complete → worker picks the request up.
	StageQueueWait
	// StageExecute: the op body (STM transaction + WAL append for updates).
	StageExecute
	// StageAckStage: execute done → staged ack handed to the sync loop.
	StageAckStage
	// StageSyncWait: staged → the covering group-commit fsync returned.
	StageSyncWait
	// StageAckWrite: ack released → response bytes written to the socket.
	StageAckWrite
	// StageTotal: frame read complete → response written; the end-to-end
	// server-side latency every other server stage attributes into.
	StageTotal
	// StageAttempt: one STM attempt. Src = shard/instance id, A = attempt
	// number (1-based), B = 0 if the attempt committed, AbortReason+1 if it
	// aborted.
	StageAttempt
	// StageWalAppend: ObserveCommit — encoding the redo into the stream
	// buffer (plus the inline fsync under SyncEveryCommit).
	StageWalAppend
	// StageWalCoalesce: append done → the covering flush began its fsync;
	// the group-commit batching delay.
	StageWalCoalesce
	// StageWalFsync: the covering fsync itself. Src = shard, A = batch size.
	StageWalFsync
	// StageReplicaApply: a follower applied the record. Src = shard,
	// A = record commit ts, B = clock-offset estimate (ns, leader→follower)
	// used to shift the span into the leader's timebase.
	StageReplicaApply

	numStages
)

// NumStages sizes per-stage arrays.
const NumStages = int(numStages)

var stageNames = [NumStages]string{
	StageDecode:       "decode",
	StageQueueWait:    "queue-wait",
	StageExecute:      "execute",
	StageAckStage:     "ack-stage",
	StageSyncWait:     "sync-wait",
	StageAckWrite:     "ack-write",
	StageTotal:        "total",
	StageAttempt:      "attempt",
	StageWalAppend:    "wal-append",
	StageWalCoalesce:  "wal-coalesce",
	StageWalFsync:     "wal-fsync",
	StageReplicaApply: "replica-apply",
}

func (s Stage) String() string {
	if int(s) < NumStages && stageNames[s] != "" {
		return stageNames[s]
	}
	return "stage(?)"
}

// StageByName is the inverse of Stage.String (0, false for unknown names).
// stmtrace uses it to decode span JSON back into typed stages.
func StageByName(name string) (Stage, bool) {
	for i, n := range stageNames {
		if n == name {
			return Stage(i), true
		}
	}
	return 0, false
}

// Span is one decoded trace span.
type Span struct {
	Seq     uint64 // global record order (1-based)
	Trace   uint64 // trace id; groups the spans of one sampled request
	Stage   Stage
	Src     uint64 // stage-dependent source id (op, shard, instance)
	StartNs int64  // wall-clock start, UnixNano (leader timebase)
	DurNs   int64
	A, B    uint64 // stage-dependent payload words (see Stage docs)
}

type spanSlot struct {
	seq     atomic.Uint64 // 0 while a writer is mid-publish
	trace   atomic.Uint64
	stage   atomic.Uint32
	src     atomic.Uint64
	startNs atomic.Int64
	durNs   atomic.Int64
	a       atomic.Uint64
	b       atomic.Uint64
}

// Tracer records sampled per-transaction spans into a fixed-size lock-free
// ring, with the same discipline as the event Recorder: Record is
// allocation-free and safe from any goroutine, a nil *Tracer records nothing
// and samples nothing, and readers drop slots caught mid-rewrite. Sampling
// is deterministic — every N-th frame read by SampleID gets a nonzero trace
// id — so overhead is a fixed, testable fraction and traces are reproducible
// under a seeded workload.
type Tracer struct {
	slots []spanSlot
	mask  uint64
	next  atomic.Uint64
	ctr   atomic.Uint64
	every uint64
	// hists[stage] aggregates per-stage durations into the registry as
	// trace.stage.<name>, so stmtop's breakdown pane works from OpStats
	// alone. nil entries (no registry) skip aggregation.
	hists [NumStages]*Hist
}

// NewTracer returns a tracer sampling one of every `every` requests into a
// ring of `size` spans (rounded up to a power of two, minimum 16; size <= 0
// selects DefaultRingSize; every <= 0 is clamped to 1 = sample everything).
// When reg is non-nil, per-stage duration histograms are registered as
// trace.stage.<name>.
func NewTracer(size, every int, reg *Registry) *Tracer {
	if size <= 0 {
		size = DefaultRingSize
	}
	if size < 16 {
		size = 16
	}
	if size&(size-1) != 0 {
		size = 1 << bits.Len(uint(size))
	}
	if every < 1 {
		every = 1
	}
	t := &Tracer{slots: make([]spanSlot, size), mask: uint64(size - 1), every: uint64(every)}
	if reg != nil {
		for st := 1; st < NumStages; st++ {
			t.hists[st] = reg.Hist("trace.stage." + Stage(st).String())
		}
	}
	return t
}

// Every returns the sampling period (0 on a nil tracer).
func (t *Tracer) Every() uint64 {
	if t == nil {
		return 0
	}
	return t.every
}

// SampleID draws the next sampling decision: a unique nonzero trace id for
// one in every `every` calls, 0 (don't trace) otherwise. Safe on a nil
// receiver (always 0). The id doubles as the sample ordinal, so consecutive
// sampled requests have increasing ids.
func (t *Tracer) SampleID() uint64 {
	if t == nil {
		return 0
	}
	n := t.ctr.Add(1)
	if n%t.every != 0 {
		return 0
	}
	return n
}

// Record publishes one span. id 0 (unsampled) and nil receivers are no-ops,
// so instrumentation points call Record unconditionally. startNs is
// UnixNano; durNs the stage duration.
func (t *Tracer) Record(id uint64, st Stage, src uint64, startNs, durNs int64, a, b uint64) {
	if t == nil || id == 0 {
		return
	}
	seq := t.next.Add(1)
	s := &t.slots[(seq-1)&t.mask]
	s.seq.Store(0)
	s.trace.Store(id)
	s.stage.Store(uint32(st))
	s.src.Store(src)
	s.startNs.Store(startNs)
	s.durNs.Store(durNs)
	s.a.Store(a)
	s.b.Store(b)
	s.seq.Store(seq)
	if int(st) < NumStages {
		if h := t.hists[st]; h != nil && durNs >= 0 {
			h.RecordNs(uint64(durNs))
		}
	}
}

// Len returns the number of spans recorded so far (not capped at ring size).
// Safe on a nil receiver.
func (t *Tracer) Len() uint64 {
	if t == nil {
		return 0
	}
	return t.next.Load()
}

// Spans returns the decodable spans currently in the ring, oldest first.
// Slots being rewritten concurrently are skipped. Safe on a nil receiver.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	out := make([]Span, 0, len(t.slots))
	for i := range t.slots {
		s := &t.slots[i]
		seq1 := s.seq.Load()
		if seq1 == 0 {
			continue
		}
		sp := Span{
			Seq:     seq1,
			Trace:   s.trace.Load(),
			Stage:   Stage(s.stage.Load()),
			Src:     s.src.Load(),
			StartNs: s.startNs.Load(),
			DurNs:   s.durNs.Load(),
			A:       s.a.Load(),
			B:       s.b.Load(),
		}
		if s.seq.Load() != seq1 {
			continue // torn: a writer rewrote the slot while we read it
		}
		out = append(out, sp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// TraceVersion identifies the trace JSON schema (OpTrace, /debug/obs/trace).
const TraceVersion = 1

// TraceDump is the JSON shape of a tracer snapshot.
type TraceDump struct {
	Version int        `json:"version"`
	Every   uint64     `json:"every"`
	Spans   []SpanJSON `json:"spans"`
}

// SpanJSON is one span with the stage rendered by name, the schema stmtrace
// and /debug/obs/trace consumers parse.
type SpanJSON struct {
	Seq     uint64 `json:"seq"`
	Trace   uint64 `json:"trace"`
	Stage   string `json:"stage"`
	Src     uint64 `json:"src"`
	StartNs int64  `json:"start_ns"`
	DurNs   int64  `json:"dur_ns"`
	A       uint64 `json:"a,omitempty"`
	B       uint64 `json:"b,omitempty"`
}

// Dump returns the current ring contents as a TraceDump. Safe on a nil
// receiver (version and an empty span list, so consumers see a valid,
// obviously-off document rather than an error).
func (t *Tracer) Dump() TraceDump {
	d := TraceDump{Version: TraceVersion, Every: t.Every(), Spans: []SpanJSON{}}
	for _, sp := range t.Spans() {
		d.Spans = append(d.Spans, SpanJSON{
			Seq: sp.Seq, Trace: sp.Trace, Stage: sp.Stage.String(), Src: sp.Src,
			StartNs: sp.StartNs, DurNs: sp.DurNs, A: sp.A, B: sp.B,
		})
	}
	return d
}

// JSON encodes Dump. Safe on a nil receiver.
func (t *Tracer) JSON() ([]byte, error) {
	return json.MarshalIndent(t.Dump(), "", "  ")
}
