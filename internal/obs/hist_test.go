package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestHistEmpty(t *testing.T) {
	var h Hist
	if h.Count() != 0 {
		t.Fatalf("Count = %d, want 0", h.Count())
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("Quantile(%v) on empty hist = %v, want 0", q, got)
		}
	}
	if h.Max() != 0 {
		t.Fatalf("Max on empty hist = %v, want 0", h.Max())
	}
	snap := h.Snapshot()
	if snap.Count != 0 || snap.P50 != 0 || snap.P999 != 0 || snap.Max != 0 {
		t.Fatalf("empty snapshot = %+v, want zeros", snap)
	}
}

func TestHistOneSample(t *testing.T) {
	var h Hist
	h.Record(100 * time.Microsecond)
	if h.Count() != 1 {
		t.Fatalf("Count = %d, want 1", h.Count())
	}
	// Every quantile of a single sample reports the same bucket's upper
	// bound, within the histogram's 1/16 relative error.
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := h.Quantile(q)
		if got < 100*time.Microsecond || got > 100*time.Microsecond*17/16+1 {
			t.Fatalf("Quantile(%v) = %v, want ~100µs (≤ +1/16)", q, got)
		}
	}
	if h.Max() != h.Quantile(1) {
		t.Fatalf("Max = %v, Quantile(1) = %v; want equal", h.Max(), h.Quantile(1))
	}
}

func TestHistNegativeClampsToZero(t *testing.T) {
	var h Hist
	h.Record(-time.Second)
	if got := h.Quantile(0.5); got != time.Duration(1) {
		t.Fatalf("Quantile after negative sample = %v, want 1ns (bucket-0 upper bound)", got)
	}
}

func TestHistOverflowBucket(t *testing.T) {
	var h Hist
	h.RecordNs(math.MaxUint64)
	// The top bucket's reported upper bound must saturate at MaxUint64,
	// not wrap around to something tiny (1<<64 == 0).
	got := uint64(h.Quantile(1))
	if got != math.MaxUint64 {
		t.Fatalf("Quantile(1) of MaxUint64 sample = %d, want MaxUint64", got)
	}
	if uint64(h.Max()) != math.MaxUint64 {
		t.Fatalf("Max of MaxUint64 sample = %d, want MaxUint64", uint64(h.Max()))
	}
	// A sample one bucket below the top must not be affected.
	var h2 Hist
	h2.RecordNs(1 << 62)
	if got := uint64(h2.Quantile(1)); got == math.MaxUint64 || got < 1<<62 {
		t.Fatalf("Quantile(1) of 2^62 sample = %d, want (2^62, MaxUint64)", got)
	}
}

func TestHistBucketRoundTrip(t *testing.T) {
	// histLow(i) must land back in bucket i, and histLow(i+1) must be the
	// smallest value of the next bucket, across the full index range.
	for i := 0; i < histBuckets; i++ {
		lo := histLow(i)
		if got := histBucket(lo); got != i {
			t.Fatalf("histBucket(histLow(%d)=%d) = %d", i, lo, got)
		}
		hi := histLow(i + 1)
		if hi <= lo {
			t.Fatalf("histLow not monotone at %d: %d -> %d", i, lo, hi)
		}
		if i < histBuckets-1 {
			if got := histBucket(hi); got != i+1 {
				t.Fatalf("histBucket(histLow(%d)=%d) = %d, want %d", i+1, hi, got, i+1)
			}
		}
	}
	if histLow(histBuckets) != math.MaxUint64 {
		t.Fatalf("histLow(top+1) = %d, want MaxUint64", histLow(histBuckets))
	}
}

func TestHistMerge(t *testing.T) {
	var a, b Hist
	for i := 0; i < 100; i++ {
		a.Record(time.Millisecond)
	}
	for i := 0; i < 100; i++ {
		b.Record(time.Second)
	}
	a.Merge(&b)
	if a.Count() != 200 {
		t.Fatalf("merged Count = %d, want 200", a.Count())
	}
	p25, p75 := a.Quantile(0.25), a.Quantile(0.75)
	if p25 > 2*time.Millisecond {
		t.Fatalf("merged p25 = %v, want ~1ms", p25)
	}
	if p75 < 500*time.Millisecond {
		t.Fatalf("merged p75 = %v, want ~1s", p75)
	}
	// b is untouched.
	if b.Count() != 100 {
		t.Fatalf("source hist mutated: Count = %d", b.Count())
	}
}

func TestHistConcurrentRecordSnapshot(t *testing.T) {
	// Record from several goroutines while snapshotting continuously;
	// under -race this exercises the lock-free paths, and the final
	// counts must be exact once writers stop.
	var h Hist
	const writers, perWriter = 4, 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := h.Snapshot()
			if snap.P999 < snap.P50 {
				t.Errorf("snapshot quantiles inverted: %+v", snap)
				return
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.Record(time.Duration(i%1000) * time.Microsecond)
			}
		}(w)
	}
	for h.Count() < writers*perWriter {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if got := h.Count(); got != writers*perWriter {
		t.Fatalf("Count = %d, want %d", got, writers*perWriter)
	}
	snap := h.Snapshot()
	if snap.Count != writers*perWriter {
		t.Fatalf("snapshot Count = %d, want %d", snap.Count, writers*perWriter)
	}
	if snap.Max > int64(2*time.Millisecond) {
		t.Fatalf("Max = %v, larger than any recorded sample", time.Duration(snap.Max))
	}
}
