package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync/atomic"
	"time"
)

// EventKind tags a flight-recorder event. Each kind documents what its
// three payload words (A, B, C) mean.
type EventKind uint8

const (
	evNone EventKind = iota
	// EvAbort: a transaction attempt aborted. A = source id (shard index),
	// B = AbortReason, C = attempt number within the retry loop.
	EvAbort
	// EvModeSwitch: an mvstm instance advanced its mode counter.
	// A = source id, B = new counter value (mode = B & 3: 0 Q, 1 QtoU,
	// 2 U, 3 UtoQ).
	EvModeSwitch
	// EvWalDegraded: a WAL stream entered (or deepened) degraded mode.
	// A = shard, B = consecutive append/fsync failures, C = 1 if the
	// stream's redundancy is exhausted.
	EvWalDegraded
	// EvWalHealed: a degraded WAL stream recovered. A = shard,
	// B = nanoseconds spent degraded.
	EvWalHealed
	// EvWalSevered: the log was severed (crash-injected or fatal).
	EvWalSevered
	// EvCkptBegin: checkpoint started. A = frozen checkpoint ts.
	EvCkptBegin
	// EvCkptEnd: checkpoint finished. A = checkpoint ts, B = live pairs
	// written, C = segments truncated.
	EvCkptEnd
	// EvCkptSkip: checkpoint completed but segment truncation was skipped
	// (degraded stream or retention debt). A = checkpoint ts.
	EvCkptSkip
	// EvGroupCommit: one WAL flush batch hit the disk. A = shard,
	// B = records in the batch.
	EvGroupCommit
	// EvAckBatch: the server released one group-commit ack batch.
	// A = acks in the batch, B = 1 if the Sync succeeded, 0 if the batch
	// was failed.
	EvAckBatch
	// EvReplicaRebase: a follower applied a rebase (checkpoint image).
	// A = rebase base ts, B = pairs in the image.
	EvReplicaRebase
	// EvViolation: a torture/consistency violation was detected; the ring
	// is dumped right after recording this. A = free-form code.
	EvViolation
)

func (k EventKind) String() string {
	switch k {
	case EvAbort:
		return "abort"
	case EvModeSwitch:
		return "mode-switch"
	case EvWalDegraded:
		return "wal-degraded"
	case EvWalHealed:
		return "wal-healed"
	case EvWalSevered:
		return "wal-severed"
	case EvCkptBegin:
		return "ckpt-begin"
	case EvCkptEnd:
		return "ckpt-end"
	case EvCkptSkip:
		return "ckpt-trunc-skip"
	case EvGroupCommit:
		return "group-commit"
	case EvAckBatch:
		return "ack-batch"
	case EvReplicaRebase:
		return "replica-rebase"
	case EvViolation:
		return "violation"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one decoded flight-recorder entry.
type Event struct {
	Seq     uint64 // global record order (1-based)
	UnixNs  int64
	Kind    EventKind
	A, B, C uint64
}

type evSlot struct {
	seq  atomic.Uint64 // 0 while a writer is mid-publish
	ns   atomic.Int64
	kind atomic.Uint32
	a    atomic.Uint64
	b    atomic.Uint64
	c    atomic.Uint64
}

// Recorder is a fixed-size lock-free ring of structured events. Record is
// allocation-free and safe from any goroutine; a nil *Recorder records
// nothing, so layers thread an optional recorder without branching beyond
// the nil check inside Record. Readers (Events, Dump) run concurrently
// with writers and drop slots caught mid-rewrite.
type Recorder struct {
	slots []evSlot
	mask  uint64
	next  atomic.Uint64
}

// DefaultRingSize is the ring capacity binaries use unless overridden.
const DefaultRingSize = 4096

// NewRecorder returns a recorder with capacity size rounded up to a power
// of two (minimum 16; size <= 0 selects DefaultRingSize).
func NewRecorder(size int) *Recorder {
	if size <= 0 {
		size = DefaultRingSize
	}
	if size < 16 {
		size = 16
	}
	if size&(size-1) != 0 {
		size = 1 << bits.Len(uint(size))
	}
	return &Recorder{slots: make([]evSlot, size), mask: uint64(size - 1)}
}

// Record appends one event, overwriting the oldest when the ring is full.
// Safe on a nil receiver (no-op).
//
// Publication protocol: the writer claims a unique sequence number, clears
// the slot's seq to 0, stores the payload fields, then stores the sequence
// number last. A reader that sees the same non-zero seq before and after
// loading the fields observed a fully published event; any interleaved
// rewrite changes seq (it strictly increases per slot) and the reader
// discards the slot.
func (r *Recorder) Record(kind EventKind, a, b, c uint64) {
	if r == nil {
		return
	}
	seq := r.next.Add(1)
	s := &r.slots[(seq-1)&r.mask]
	s.seq.Store(0)
	s.ns.Store(time.Now().UnixNano())
	s.kind.Store(uint32(kind))
	s.a.Store(a)
	s.b.Store(b)
	s.c.Store(c)
	s.seq.Store(seq)
}

// Len returns the number of events recorded so far (not capped at ring
// size). Safe on a nil receiver.
func (r *Recorder) Len() uint64 {
	if r == nil {
		return 0
	}
	return r.next.Load()
}

// Events returns the decodable events currently in the ring, oldest first.
// Slots being rewritten concurrently are skipped. Safe on a nil receiver.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	out := make([]Event, 0, len(r.slots))
	for i := range r.slots {
		s := &r.slots[i]
		seq1 := s.seq.Load()
		if seq1 == 0 {
			continue
		}
		ev := Event{
			Seq:    seq1,
			UnixNs: s.ns.Load(),
			Kind:   EventKind(s.kind.Load()),
			A:      s.a.Load(),
			B:      s.b.Load(),
			C:      s.c.Load(),
		}
		if s.seq.Load() != seq1 {
			continue // torn: a writer rewrote the slot while we read it
		}
		out = append(out, ev)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// CountKind returns how many ring-resident events have the given kind.
// Useful in tests; for long runs prefer registry counters (the ring
// forgets overwritten events).
func (r *Recorder) CountKind(kind EventKind) int {
	n := 0
	for _, ev := range r.Events() {
		if ev.Kind == kind {
			n++
		}
	}
	return n
}

var modeNames = [4]string{"Q", "QtoU", "U", "UtoQ"}

// Format renders one event as a human-readable line (no trailing newline).
func (ev Event) Format() string {
	t := time.Unix(0, ev.UnixNs).UTC().Format("15:04:05.000000")
	switch ev.Kind {
	case EvAbort:
		return fmt.Sprintf("%s #%d abort src=%d reason=%s attempt=%d",
			t, ev.Seq, ev.A, AbortReason(ev.B).String(), ev.C)
	case EvModeSwitch:
		return fmt.Sprintf("%s #%d mode-switch src=%d mode=%s counter=%d",
			t, ev.Seq, ev.A, modeNames[ev.B&3], ev.B)
	case EvWalDegraded:
		return fmt.Sprintf("%s #%d wal-degraded shard=%d fails=%d exhausted=%d",
			t, ev.Seq, ev.A, ev.B, ev.C)
	case EvWalHealed:
		return fmt.Sprintf("%s #%d wal-healed shard=%d degraded_for=%s",
			t, ev.Seq, ev.A, time.Duration(ev.B))
	case EvWalSevered:
		return fmt.Sprintf("%s #%d wal-severed", t, ev.Seq)
	case EvCkptBegin:
		return fmt.Sprintf("%s #%d ckpt-begin ts=%d", t, ev.Seq, ev.A)
	case EvCkptEnd:
		return fmt.Sprintf("%s #%d ckpt-end ts=%d pairs=%d truncated_segs=%d",
			t, ev.Seq, ev.A, ev.B, ev.C)
	case EvCkptSkip:
		return fmt.Sprintf("%s #%d ckpt-trunc-skip ts=%d", t, ev.Seq, ev.A)
	case EvGroupCommit:
		return fmt.Sprintf("%s #%d group-commit shard=%d recs=%d", t, ev.Seq, ev.A, ev.B)
	case EvAckBatch:
		return fmt.Sprintf("%s #%d ack-batch acks=%d synced=%d", t, ev.Seq, ev.A, ev.B)
	case EvReplicaRebase:
		return fmt.Sprintf("%s #%d replica-rebase base_ts=%d pairs=%d", t, ev.Seq, ev.A, ev.B)
	case EvViolation:
		return fmt.Sprintf("%s #%d VIOLATION code=%d", t, ev.Seq, ev.A)
	}
	return fmt.Sprintf("%s #%d %s a=%d b=%d c=%d", t, ev.Seq, ev.Kind, ev.A, ev.B, ev.C)
}

// Dump writes the ring's events to w, oldest first, with a header and
// footer so dumps are greppable in mixed logs. Safe on a nil receiver.
func (r *Recorder) Dump(w io.Writer) {
	if r == nil {
		fmt.Fprintln(w, "obs: no flight recorder attached")
		return
	}
	evs := r.Events()
	fmt.Fprintf(w, "=== obs flight recorder: %d event(s) in ring, %d recorded ===\n",
		len(evs), r.Len())
	for _, ev := range evs {
		fmt.Fprintln(w, ev.Format())
	}
	fmt.Fprintln(w, "=== end flight recorder ===")
}
