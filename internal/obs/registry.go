package obs

import (
	"encoding/json"
	"sync"
	"sync/atomic"
)

// NumStripes is the number of padded cells a Counter spreads its increments
// across. Callers pass a stable per-thread slot (worker index, shard index)
// so concurrent increments land on different cache lines. Power of two.
const NumStripes = 64

type ctrCell struct {
	v atomic.Uint64
	_ [56]byte // pad to a cache line so neighbouring stripes don't false-share
}

// Counter is a striped monotonically increasing counter. Inc/Add are
// allocation-free and contention-free when callers use distinct slots;
// Value folds the stripes at read time.
type Counter struct {
	cells [NumStripes]ctrCell
}

// Inc adds 1 on the stripe for slot (any int; masked internally).
func (c *Counter) Inc(slot int) { c.cells[uint(slot)%NumStripes].v.Add(1) }

// Add adds n on the stripe for slot.
func (c *Counter) Add(slot int, n uint64) { c.cells[uint(slot)%NumStripes].v.Add(n) }

// Value returns the sum over all stripes.
func (c *Counter) Value() uint64 {
	var n uint64
	for i := range c.cells {
		n += c.cells[i].v.Load()
	}
	return n
}

// Gauge is a last-write-wins instantaneous value.
type Gauge struct {
	v atomic.Uint64
}

// Set stores the gauge value.
func (g *Gauge) Set(v uint64) { g.v.Store(v) }

// Value returns the current gauge value.
func (g *Gauge) Value() uint64 { return g.v.Load() }

// Registry is a named collection of metrics plus collector callbacks polled
// at snapshot time. Registries are plain values — binaries and tests create
// their own, so concurrent systems in one process never collide on names.
// Metric lookup takes a mutex; hot paths hold on to the returned *Counter /
// *Gauge / *Hist and never touch the registry again.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Hist
	funcs    []func(emit func(name string, v uint64))
	texts    []func(emit func(name, v string))
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Hist),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Hist returns the named histogram, creating it on first use.
func (r *Registry) Hist(name string) *Hist {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Hist{}
		r.hists[name] = h
	}
	return h
}

// Func registers a collector polled at snapshot time. Layers that already
// maintain their own atomics (wal.Log, shard.System) register one closure
// emitting them, so the registry is live without hot-path double counting.
// Emitting a name that a counter/gauge or another collector also emits is
// allowed; the later emission wins.
func (r *Registry) Func(f func(emit func(name string, v uint64))) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs = append(r.funcs, f)
}

// Text registers a collector for string-valued entries (health states,
// mode names), polled at snapshot time.
func (r *Registry) Text(f func(emit func(name, v string))) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.texts = append(r.texts, f)
}

// SnapshotVersion identifies the Snapshot wire/JSON schema. Consumers
// (stmtop, CI smoke scrapes) should check it before interpreting fields.
const SnapshotVersion = 1

// Snapshot is one consistent-enough view of a registry: flat dotted names,
// JSON-encodable, versioned. Counter and gauge values land in Counters;
// string-valued entries (health states) in Text; histogram summaries in
// Hists.
type Snapshot struct {
	Version  int                     `json:"version"`
	Counters map[string]uint64       `json:"counters"`
	Text     map[string]string       `json:"text,omitempty"`
	Hists    map[string]HistSnapshot `json:"hists,omitempty"`
}

// Snapshot folds all metrics and collector callbacks into one view.
// Collectors run after the registry lock is released — they only read
// their own atomics, so a collector may itself take snapshots of other
// subsystems without lock-ordering concerns.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make([]struct {
		name string
		c    *Counter
	}, 0, len(r.counters))
	for name, c := range r.counters {
		counters = append(counters, struct {
			name string
			c    *Counter
		}{name, c})
	}
	gauges := make([]struct {
		name string
		g    *Gauge
	}, 0, len(r.gauges))
	for name, g := range r.gauges {
		gauges = append(gauges, struct {
			name string
			g    *Gauge
		}{name, g})
	}
	hists := make([]struct {
		name string
		h    *Hist
	}, 0, len(r.hists))
	for name, h := range r.hists {
		hists = append(hists, struct {
			name string
			h    *Hist
		}{name, h})
	}
	funcs := make([]func(emit func(string, uint64)), len(r.funcs))
	copy(funcs, r.funcs)
	texts := make([]func(emit func(string, string)), len(r.texts))
	copy(texts, r.texts)
	r.mu.Unlock()

	s := Snapshot{
		Version:  SnapshotVersion,
		Counters: make(map[string]uint64),
	}
	for _, e := range counters {
		s.Counters[e.name] = e.c.Value()
	}
	for _, e := range gauges {
		s.Counters[e.name] = e.g.Value()
	}
	for _, f := range funcs {
		f(func(name string, v uint64) { s.Counters[name] = v })
	}
	if len(hists) > 0 {
		s.Hists = make(map[string]HistSnapshot, len(hists))
		for _, e := range hists {
			s.Hists[e.name] = e.h.Snapshot()
		}
	}
	if len(texts) > 0 {
		s.Text = make(map[string]string)
		for _, f := range texts {
			f(func(name, v string) { s.Text[name] = v })
		}
	}
	return s
}

// JSON returns the snapshot encoded as JSON (keys sorted, stable for
// diffing and CI scrapes).
func (r *Registry) JSON() ([]byte, error) {
	return json.MarshalIndent(r.Snapshot(), "", "  ")
}
