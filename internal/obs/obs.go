// Package obs is the unified observability plane: a process-wide metrics
// registry (striped counters, gauges, log-linear latency histograms, and
// poll-time collector callbacks), a fixed-size flight recorder of structured
// events, and the HTTP scrape surface stmserve mounts under -obs.
//
// It is a leaf package (stdlib only), like internal/server/wire, so every
// runtime layer — the TM backends, internal/shard, internal/wal,
// internal/server, internal/replica — and every binary can import it without
// import cycles. Layers never pay for instrumentation they did not ask for:
// a nil *Recorder records nothing (one branch), and registries are plain
// values created by binaries and tests, not process globals, so concurrent
// systems in one test process never collide on metric names.
//
// # Registry
//
// A Registry holds named metrics. Counters are striped across padded cells
// so concurrent increments from different worker slots do not share cache
// lines, and incrementing allocates nothing. Collector callbacks registered
// with Func/Text are polled only at snapshot time; they let a layer expose
// counters it already maintains (wal.Log's atomics, shard.System's
// per-shard stm.Stats) as live registry entries without double counting on
// the hot path. Snapshot() folds everything into one versioned,
// JSON-encodable view with flat dotted names ("shard.0.commits",
// "wal.health", "server.lat.insert").
//
// # Flight recorder
//
// A Recorder is a fixed-size ring of structured events (abort reasons, mode
// switches, WAL health transitions, checkpoint lifecycle, group-commit batch
// sizes, replica rebases). Recording is lock-free: a writer claims the next
// slot by sequence number and publishes fields through atomics; readers
// re-check the slot's sequence stamp and discard slots caught mid-rewrite,
// so Dump is safe (and race-detector clean) against concurrent recording.
// The ring is dumpable on demand, on SIGQUIT (cmd/stmserve), and
// automatically on an stmtorture violation.
package obs

// AbortReason classifies why a transaction attempt aborted. The TM backends
// (mvstm, tl2, dctl) tag each abort with a reason; per-reason counts
// aggregate through stm.Counters and abort events carry the reason into the
// flight recorder.
type AbortReason uint8

const (
	// ReasonUnknown: the backend did not classify the abort (baseline TMs,
	// or an abort raised outside the instrumented sites).
	ReasonUnknown AbortReason = iota
	// ReasonLockBusy: an encounter-time or commit-time lock acquisition
	// found the lock held by another transaction (or lost the CAS race).
	ReasonLockBusy
	// ReasonValidation: a read validated against a lock version at or above
	// the transaction's read clock, or commit-time revalidation failed.
	ReasonValidation
	// ReasonVersionGone: a versioned or pinned-timestamp read could not be
	// served — the value as of the read timestamp is no longer available
	// (version list exhausted, or an unversioned address was overwritten).
	ReasonVersionGone
	// ReasonWalReject: wal.Map refused the mutation because the log's
	// degraded-mode policy (DegradeReject) is in force.
	ReasonWalReject

	// NumAbortReasons sizes per-reason counter arrays.
	NumAbortReasons = int(ReasonWalReject) + 1
)

func (r AbortReason) String() string {
	switch r {
	case ReasonLockBusy:
		return "lock-busy"
	case ReasonValidation:
		return "validation"
	case ReasonVersionGone:
		return "version-gone"
	case ReasonWalReject:
		return "wal-reject"
	}
	return "unknown"
}
