package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterStriping(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test.ops")
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc(slot)
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("Value = %d, want %d", got, workers*per)
	}
	// Negative and huge slots must mask safely.
	c.Inc(-1)
	c.Add(1<<40, 2)
	if got := c.Value(); got != workers*per+3 {
		t.Fatalf("Value after odd slots = %d, want %d", got, workers*per+3)
	}
}

func TestRegistryIdempotentLookup(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("Counter lookup not idempotent")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("Gauge lookup not idempotent")
	}
	if r.Hist("h") != r.Hist("h") {
		t.Fatal("Hist lookup not idempotent")
	}
}

func TestRegistrySnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("server.requests").Add(0, 7)
	r.Gauge("wal.retained_segments").Set(3)
	r.Hist("server.lat.insert").Record(250 * time.Microsecond)
	r.Func(func(emit func(string, uint64)) {
		emit("shard.0.commits", 41)
		emit("shard.1.commits", 42)
	})
	r.Text(func(emit func(string, string)) { emit("wal.health", "healthy") })

	b, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(b, &snap); err != nil {
		t.Fatalf("snapshot did not round-trip: %v\n%s", err, b)
	}
	if snap.Version != SnapshotVersion {
		t.Fatalf("version = %d, want %d", snap.Version, SnapshotVersion)
	}
	for name, want := range map[string]uint64{
		"server.requests":       7,
		"wal.retained_segments": 3,
		"shard.0.commits":       41,
		"shard.1.commits":       42,
	} {
		if got := snap.Counters[name]; got != want {
			t.Errorf("counter %q = %d, want %d", name, got, want)
		}
	}
	if snap.Text["wal.health"] != "healthy" {
		t.Errorf("text wal.health = %q", snap.Text["wal.health"])
	}
	hs, ok := snap.Hists["server.lat.insert"]
	if !ok || hs.Count != 1 || hs.P99 == 0 {
		t.Errorf("hist snapshot = %+v (ok=%v)", hs, ok)
	}
}

// Collector funcs registered later win on name collisions; this is what
// lets wal and server both emit shard.* over one registry.
func TestRegistryLastEmissionWins(t *testing.T) {
	r := NewRegistry()
	r.Func(func(emit func(string, uint64)) { emit("dup", 1) })
	r.Func(func(emit func(string, uint64)) { emit("dup", 2) })
	if got := r.Snapshot().Counters["dup"]; got != 2 {
		t.Fatalf("dup = %d, want 2 (last emission wins)", got)
	}
}

func TestRecorderBasicAndWrap(t *testing.T) {
	rec := NewRecorder(16)
	for i := 0; i < 40; i++ {
		rec.Record(EvAbort, uint64(i), uint64(ReasonLockBusy), 1)
	}
	evs := rec.Events()
	if len(evs) != 16 {
		t.Fatalf("ring holds %d events, want 16", len(evs))
	}
	// Oldest surviving event is #25 (40 recorded, ring of 16).
	if evs[0].Seq != 25 || evs[len(evs)-1].Seq != 40 {
		t.Fatalf("seq range [%d, %d], want [25, 40]", evs[0].Seq, evs[len(evs)-1].Seq)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("events not in order: %d after %d", evs[i].Seq, evs[i-1].Seq)
		}
	}
	if rec.Len() != 40 {
		t.Fatalf("Len = %d, want 40", rec.Len())
	}
	if rec.CountKind(EvAbort) != 16 {
		t.Fatalf("CountKind(EvAbort) = %d, want 16", rec.CountKind(EvAbort))
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var rec *Recorder
	rec.Record(EvWalSevered, 0, 0, 0) // must not panic
	if rec.Events() != nil || rec.Len() != 0 {
		t.Fatal("nil recorder should report no events")
	}
	var sb strings.Builder
	rec.Dump(&sb)
	if !strings.Contains(sb.String(), "no flight recorder") {
		t.Fatalf("nil Dump output: %q", sb.String())
	}
}

func TestRecorderConcurrentDump(t *testing.T) {
	rec := NewRecorder(64)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				rec.Record(EvAbort, uint64(w), uint64(ReasonValidation), uint64(i))
			}
		}(w)
	}
	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		for _, ev := range rec.Events() {
			// Any event that survives the torn-slot check must decode to
			// exactly what some writer stored.
			if ev.Kind != EvAbort || ev.A > 3 || AbortReason(ev.B) != ReasonValidation {
				t.Errorf("torn event leaked: %+v", ev)
			}
		}
	}
	close(stop)
	wg.Wait()
	var sb strings.Builder
	rec.Dump(&sb)
	if !strings.Contains(sb.String(), "flight recorder") || !strings.Contains(sb.String(), "reason=validation") {
		t.Fatalf("dump output missing expected lines:\n%s", sb.String())
	}
}

func TestEventFormat(t *testing.T) {
	ev := Event{Seq: 3, Kind: EvWalHealed, A: 1, B: uint64(50 * time.Millisecond)}
	s := ev.Format()
	if !strings.Contains(s, "wal-healed") || !strings.Contains(s, "shard=1") || !strings.Contains(s, "50ms") {
		t.Fatalf("Format = %q", s)
	}
	if !strings.Contains((Event{Kind: EvModeSwitch, B: 2}).Format(), "mode=U") {
		t.Fatalf("mode switch format: %q", (Event{Kind: EvModeSwitch, B: 2}).Format())
	}
}
