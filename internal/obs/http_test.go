package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
	return w
}

func TestHandlerSnapshot(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test.hits").Add(0, 3)
	h := Handler(reg, nil, nil)

	w := get(t, h, "/debug/obs")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type %q", ct)
	}
	var snap Snapshot
	if err := json.Unmarshal(w.Body.Bytes(), &snap); err != nil {
		t.Fatalf("body not JSON: %v", err)
	}
	if snap.Version == 0 || snap.Counters["test.hits"] != 3 {
		t.Fatalf("snapshot diverged: %+v", snap)
	}
}

func TestHandlerEventsWraparoundOrder(t *testing.T) {
	reg := NewRegistry()
	rec := NewRecorder(16)
	for i := 0; i < 40; i++ {
		rec.Record(EvAckBatch, uint64(i), 1, 0)
	}
	w := get(t, Handler(reg, rec, nil), "/debug/obs/events")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content-type %q", ct)
	}
	body := w.Body.String()
	if !strings.Contains(body, "16 event(s) in ring, 40 recorded") {
		t.Fatalf("header missing after wraparound:\n%s", body)
	}
	// Dumped sequence numbers must be the surviving tail (25..40), ascending.
	seqs := regexp.MustCompile(`#(\d+) `).FindAllStringSubmatch(body, -1)
	if len(seqs) != 16 {
		t.Fatalf("dumped %d events, want 16", len(seqs))
	}
	for i, m := range seqs {
		n, _ := strconv.Atoi(m[1])
		if n != 25+i {
			t.Fatalf("event %d has seq %d, want %d (oldest-first ring tail)", i, n, 25+i)
		}
	}
}

func TestHandlerEventsNoRecorder(t *testing.T) {
	w := get(t, Handler(NewRegistry(), nil, nil), "/debug/obs/events")
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "no flight recorder attached") {
		t.Fatalf("status %d body %q", w.Code, w.Body.String())
	}
}

func TestHandlerTrace(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(64, 2, nil)
	tr.Record(2, StageDecode, 1, 100, 5, 1, 0)
	tr.Record(2, StageTotal, 0, 100, 50, 0, 0)
	w := get(t, Handler(reg, nil, tr), "/debug/obs/trace")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type %q", ct)
	}
	var d TraceDump
	if err := json.Unmarshal(w.Body.Bytes(), &d); err != nil {
		t.Fatalf("body not JSON: %v", err)
	}
	if d.Version != TraceVersion || d.Every != 2 || len(d.Spans) != 2 {
		t.Fatalf("dump diverged: %+v", d)
	}
	for _, sp := range d.Spans {
		if _, ok := StageByName(sp.Stage); !ok {
			t.Fatalf("span carries unknown stage %q", sp.Stage)
		}
	}
}

func TestHandlerTraceNilTracer(t *testing.T) {
	w := get(t, Handler(NewRegistry(), nil, nil), "/debug/obs/trace")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	var d TraceDump
	if err := json.Unmarshal(w.Body.Bytes(), &d); err != nil {
		t.Fatalf("body not JSON: %v", err)
	}
	if d.Every != 0 || len(d.Spans) != 0 || d.Version != TraceVersion {
		t.Fatalf("nil-tracer dump = %+v, want valid empty document", d)
	}
}

func TestHandlerRootAndNotFound(t *testing.T) {
	h := Handler(NewRegistry(), nil, nil)
	if w := get(t, h, "/"); w.Code != http.StatusFound || w.Header().Get("Location") != "/debug/obs" {
		t.Fatalf("root: status %d location %q", w.Code, w.Header().Get("Location"))
	}
	if w := get(t, h, "/nope"); w.Code != http.StatusNotFound {
		t.Fatalf("unknown path: status %d", w.Code)
	}
}
